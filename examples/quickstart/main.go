// Quickstart: build a small labeled network, mine its top-K largest
// frequent patterns through the public mine façade, and print them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"repro/mine"
)

func main() {
	// A toy "social network": two copies of a 6-person community motif
	// (labels: 0=organizer, 1=member) wired into background chatter.
	b := mine.NewGraphBuilder(32, 64)
	motif := func() mine.V {
		org := b.AddVertex(0)
		var members []mine.V
		for i := 0; i < 5; i++ {
			m := b.AddVertex(1)
			b.AddEdge(org, m)
			members = append(members, m)
		}
		b.AddEdge(members[0], members[1])
		b.AddEdge(members[2], members[3])
		return org
	}
	c1 := motif()
	c2 := motif()
	// background users and edges
	var bg []mine.V
	for i := 0; i < 12; i++ {
		bg = append(bg, b.AddVertex(mine.Label(2+i%3)))
	}
	for i := 0; i+1 < len(bg); i += 2 {
		b.AddEdge(bg[i], bg[i+1])
	}
	b.AddEdge(c1, bg[0])
	b.AddEdge(c2, bg[1])
	g := b.Build()

	fmt.Printf("input: %v\n\n", g)
	miner, err := mine.Get("spidermine")
	if err != nil {
		panic(err)
	}
	res, err := miner.Mine(context.Background(), mine.SingleGraph(g), mine.Options{
		MinSupport: 2, // pattern must occur at least twice
		K:          3,
		Dmax:       4,
		Epsilon:    0.1,
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mined %d patterns in %v (%d spiders, %d merges)\n",
		len(res.Patterns), res.Stats.Elapsed, res.Stats.Spiders, res.Stats.Merges)
	for i, p := range res.Patterns {
		fmt.Printf("\n-- pattern %d: %d vertices, %d edges, %d embeddings --\n",
			i+1, p.NV(), p.Size(), len(p.Emb))
		if err := p.G.WriteLG(os.Stdout, fmt.Sprintf("pattern-%d", i+1)); err != nil {
			panic(err)
		}
	}
	if len(res.Patterns) > 0 && res.Patterns[0].NV() >= 6 {
		fmt.Println("\nSpiderMine recovered the community motif.")
	}
}
