// Co-authorship analysis (the paper's DBLP scenario, §C.2): mine large
// collaborative patterns from a co-authorship network whose authors carry
// seniority labels, and contrast with what SUBDUE finds — both engines
// invoked through the public mine façade.
//
// Run with: go run ./examples/coauthorship
package main

import (
	"context"
	"fmt"

	"repro/mine"
)

var seniority = map[mine.Label]string{0: "Prolific", 1: "Senior", 2: "Junior", 3: "Beginner"}

func main() {
	g, injected := mine.DBLPLike(mine.DBLPConfig{
		Authors: 2000, // scaled-down network; Scale=1 in the benches
		Seed:    7,
	})
	fmt.Printf("co-authorship network: %v\n", g)
	fmt.Printf("planted collaborative motifs: %d (sizes", len(injected))
	for _, p := range injected {
		fmt.Printf(" %d", p.N())
	}
	fmt.Println(")")

	ctx := context.Background()
	host := mine.SingleGraph(g)
	sm, err := mine.Get("spidermine")
	if err != nil {
		panic(err)
	}
	res, err := sm.Mine(ctx, host, mine.Options{
		MinSupport: 4, K: 10, Dmax: 6, Epsilon: 0.1, Seed: 7,
		Measure: mine.MeasureHarmful, // overlapping embeddings are rife with 4 labels
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nSpiderMine top collaborative patterns (σ=4, K=10):\n")
	for i, p := range res.Patterns {
		if i >= 5 {
			break
		}
		counts := map[mine.Label]int{}
		for v := 0; v < p.NV(); v++ {
			counts[p.G.Label(mine.V(v))]++
		}
		fmt.Printf("  #%d: %2d authors, %2d collaborations, %d groups —", i+1, p.NV(), p.Size(), len(p.Emb))
		for l := mine.Label(0); l < 4; l++ {
			if counts[l] > 0 {
				fmt.Printf(" %d %s", counts[l], seniority[l])
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nSUBDUE on the same network (for contrast):\n")
	sd, err := mine.Get("subdue")
	if err != nil {
		panic(err)
	}
	sdRes, err := sd.Mine(ctx, host, mine.Options{MinSupport: 4, MaxPatterns: 5})
	if err != nil {
		panic(err)
	}
	for i, p := range sdRes.Patterns {
		fmt.Printf("  #%d: %2d authors, %2d collaborations, %d instances\n",
			i+1, p.NV(), p.Size(), len(p.Emb))
	}
	fmt.Println("\nAs in the paper: only the large patterns distinguish research communities;")
	fmt.Println("small patterns (several authors on one paper) are ubiquitous and uninformative.")
}
