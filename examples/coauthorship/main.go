// Co-authorship analysis (the paper's DBLP scenario, §C.2): mine large
// collaborative patterns from a co-authorship network whose authors carry
// seniority labels, and contrast with what SUBDUE finds.
//
// Run with: go run ./examples/coauthorship
package main

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/miner/subdue"
	"repro/internal/spidermine"
	"repro/internal/support"
)

var seniority = map[int32]string{0: "Prolific", 1: "Senior", 2: "Junior", 3: "Beginner"}

func main() {
	g, injected := gen.DBLPLike(gen.DBLPConfig{
		Authors: 2000, // scaled-down network; Scale=1 in the benches
		Seed:    7,
	})
	fmt.Printf("co-authorship network: %v\n", g)
	fmt.Printf("planted collaborative motifs: %d (sizes", len(injected))
	for _, p := range injected {
		fmt.Printf(" %d", p.N())
	}
	fmt.Println(")")

	res := spidermine.Mine(g, spidermine.Config{
		MinSupport: 4, K: 10, Dmax: 6, Epsilon: 0.1, Seed: 7,
		Measure: support.HarmfulOverlap, // overlapping embeddings are rife with 4 labels
	})
	fmt.Printf("\nSpiderMine top collaborative patterns (σ=4, K=10):\n")
	for i, p := range res.Patterns {
		if i >= 5 {
			break
		}
		counts := map[int32]int{}
		for v := 0; v < p.NV(); v++ {
			counts[int32(p.G.Label(int32(v)))]++
		}
		fmt.Printf("  #%d: %2d authors, %2d collaborations, %d groups —", i+1, p.NV(), p.Size(), len(p.Emb))
		for l := int32(0); l < 4; l++ {
			if counts[l] > 0 {
				fmt.Printf(" %d %s", counts[l], seniority[l])
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nSUBDUE on the same network (for contrast):\n")
	sd := subdue.Mine(g, subdue.Config{MinSupport: 4, MaxBest: 5})
	for i, s := range sd {
		fmt.Printf("  #%d: %2d authors, %2d collaborations, %d instances\n",
			i+1, s.P.NV(), s.P.Size(), s.Instances)
	}
	fmt.Println("\nAs in the paper: only the large patterns distinguish research communities;")
	fmt.Println("small patterns (several authors on one paper) are ubiquitous and uninformative.")
}
