package mine

import (
	"context"
	"errors"
)

// ErrTransient is the sentinel for retryable failures: an error that
// wraps it (or that implements `Transient() bool` returning true) tells
// retrying layers the run may succeed if repeated from scratch with the
// same options — an I/O hiccup, an overloaded backend — as opposed to a
// permanent failure (bad input, a miner bug, a recovered panic) that
// would only recur.
var ErrTransient = errors.New("mine: transient failure")

// transientError marks a wrapped error retryable; built by Transient.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Transient wraps err as a retryable failure: IsTransient reports true
// for the result (and for anything that wraps it). errors.Is/As still
// reach the original error. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient classifies an error for retry. It reports true only for
// errors explicitly marked retryable — wrapped by Transient, wrapping
// ErrTransient, or carrying a `Transient() bool` method that returns
// true anywhere in the chain. Context errors are never transient: a
// cancellation or deadline is a caller's decision, and retrying would
// override it. Unknown errors default to permanent — retrying a
// deterministic failure burns runner time to reproduce it.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, ErrTransient)
}
