package mine

import (
	"context"
	"errors"
	"time"

	"repro/internal/miner/grew"
	"repro/internal/miner/moss"
	"repro/internal/miner/origami"
	"repro/internal/miner/seus"
	"repro/internal/miner/subdue"
	"repro/internal/pattern"
	"repro/internal/spidermine"
	"repro/internal/support"
)

func init() {
	Register(adapter{"spidermine", "top-K largest frequent patterns via probabilistic spider growth (the paper's Algorithm 1)", mineSpiderMine, true})
	Register(adapter{"grew", "GREW-style heuristic contraction of vertex-disjoint instances", mineGrew, false})
	Register(adapter{"moss", "MoSS/gSpan-style complete frequent-subgraph enumeration", mineMoss, false})
	Register(adapter{"origami", "ORIGAMI-style randomized maximal-pattern sampling with α-orthogonal selection", mineOrigami, false})
	Register(adapter{"seus", "SEuS-style summary-graph candidate generation with full-graph verification", mineSeus, false})
	Register(adapter{"subdue", "SUBDUE-style MDL-compression beam search", mineSubdue, false})
}

// adapter wires one engine function into the Miner interface, wrapping it
// with the shared host validation and budget/error normalization.
type adapter struct {
	name string
	desc string
	fn   func(ctx context.Context, host Host, opts Options) (*Result, error)
	// selfProgress marks engines that stream their own stage events
	// (including the terminal "done"); the façade then must not emit a
	// second one.
	selfProgress bool
}

func (a adapter) Name() string     { return a.name }
func (a adapter) Describe() string { return a.desc }

// errWallClockBudget is the cancellation cause of the timeout context a
// MaxWallClock budget installs. Post-run classification keys on it: a run
// stopped by a context whose cause is this sentinel was stopped by the
// *budget* (truncation, nil error); any other cause means the *caller's*
// context fired (ctx.Err() plus committed partials). context.Cause
// latches at the instant the context fires, so the classification cannot
// be confused by the caller's context firing between the engine's return
// and the check here — unlike inspecting the caller's Err() after the
// fact.
var errWallClockBudget = errors.New("mine: MaxWallClock budget exhausted")

func (a adapter) Mine(ctx context.Context, host Host, opts Options) (*Result, error) {
	if err := host.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	caller := ctx
	cancel := context.CancelFunc(func() {})
	if opts.MaxWallClock > 0 {
		ctx, cancel = context.WithTimeoutCause(ctx, opts.MaxWallClock, errWallClockBudget)
	}
	defer cancel()
	start := time.Now()
	res, err := a.fn(ctx, host, opts)
	if res == nil {
		res = &Result{}
	}
	res.Miner = a.name
	res.Stats.Elapsed = time.Since(start)
	if len(res.Stats.Stages) == 0 {
		// Engines without an internal stage structure (everything but
		// spidermine) still report one whole-run stage, so per-stage
		// consumers (the serving layer's stage-duration histograms) see
		// every miner, not just the paper's.
		res.Stats.Stages = []StageTime{{Name: "mine", Duration: res.Stats.Elapsed}}
	}
	if opts.MaxPatterns > 0 && len(res.Patterns) > opts.MaxPatterns {
		res.Patterns = res.Patterns[:opts.MaxPatterns]
		if res.Truncated == TruncatedNone {
			res.Truncated = TruncatedMaxPatterns
		}
	}
	if err == nil {
		if !a.selfProgress {
			emit(opts, a.name, "done", len(res.Patterns), start)
		}
		return res, nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if context.Cause(ctx) == errWallClockBudget {
			// The MaxWallClock budget fired first: truncation, not an
			// error — even if the caller's context has fired since.
			res.Truncated = TruncatedDeadline
			return res, nil
		}
		if cerr := caller.Err(); cerr != nil {
			// The caller's own context fired (cancel or deadline) while
			// the run — and any live budget timeout child — was in
			// flight: surface the caller's error with the committed
			// partial result.
			if errors.Is(cerr, context.DeadlineExceeded) {
				res.Truncated = TruncatedDeadline
			} else {
				res.Truncated = TruncatedCanceled
			}
			return res, cerr
		}
		// A context error without a fired budget or caller context: an
		// engine-internal context stopped the run; report truncation.
		res.Truncated = TruncatedDeadline
		return res, nil
	}
	return res, err
}

// emit delivers a façade-level progress event.
func emit(opts Options, miner, stage string, patterns int, start time.Time) {
	if opts.OnProgress == nil {
		return
	}
	opts.OnProgress(ProgressEvent{
		Miner:    miner,
		Stage:    stage,
		Patterns: patterns,
		Elapsed:  time.Since(start),
	})
}

func mineSpiderMine(ctx context.Context, host Host, opts Options) (*Result, error) {
	measure, err := opts.Measure.internal(support.CountAll)
	if err != nil {
		return nil, err
	}
	cfg := spidermine.Config{
		MinSupport:       opts.MinSupport,
		K:                opts.K,
		Epsilon:          opts.Epsilon,
		Dmax:             opts.Dmax,
		Radius:           opts.Radius,
		Vmin:             opts.Vmin,
		Measure:          measure,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		MaxSpiders:       opts.MaxSpiders,
		MaxLeavesPerStar: opts.MaxLeavesPerStar,
		MaxEmbPerPattern: opts.MaxEmbeddings,
	}
	if opts.OnProgress != nil {
		cfg.OnProgress = func(ev spidermine.StageEvent) {
			opts.OnProgress(ProgressEvent{
				Miner:     "spidermine",
				Stage:     ev.Stage,
				Restart:   ev.Restart,
				Iteration: ev.Iteration,
				Spiders:   ev.Spiders,
				Patterns:  ev.Patterns,
				Merges:    ev.Merges,
				Elapsed:   ev.Elapsed,
			})
		}
	}
	var (
		res    *spidermine.Result
		runErr error
	)
	if host.DB != nil {
		res, runErr = spidermine.MineTransactionsContext(ctx, host.DB, cfg)
	} else {
		res, runErr = spidermine.MineContext(ctx, host.Graph, cfg)
	}
	out := &Result{Patterns: res.Patterns}
	out.Stats = Stats{
		Spiders:        res.Stats.NumSpiders,
		SeedDraws:      res.Stats.M,
		GrowIterations: res.Stats.GrowIterations,
		Merges:         res.Stats.Merges,
		IsoSkipped:     res.Stats.IsoSkipped,
		IsoRun:         res.Stats.IsoRun,
		CanonRun:       res.Stats.CanonRun,
		CanonNodes:     res.Stats.CanonNodes,
		Stages: []StageTime{
			{Name: "spiders", Duration: res.Stats.StageI},
			{Name: "growth", Duration: res.Stats.StageII},
			{Name: "recovery", Duration: res.Stats.StageIII},
		},
	}
	return out, runErr
}

func mineGrew(ctx context.Context, host Host, opts Options) (*Result, error) {
	rs, err := grew.MineContext(ctx, host.union(), grew.Config{
		MinSupport: opts.MinSupport,
	})
	out := &Result{Patterns: make([]*pattern.Pattern, 0, len(rs))}
	for _, r := range rs {
		out.Patterns = append(out.Patterns, r.P)
	}
	return out, err
}

func mineMoss(ctx context.Context, host Host, opts Options) (*Result, error) {
	// HarmfulOverlap is MoSS's native measure (the paper adopts it for
	// low-label graphs where raw embeddings overlap pathologically).
	measure, err := opts.Measure.internal(support.HarmfulOverlap)
	if err != nil {
		return nil, err
	}
	res, runErr := moss.MineContext(ctx, host.union(), moss.Config{
		MinSupport:       opts.MinSupport,
		Measure:          measure,
		MaxPatterns:      opts.MaxPatterns,
		MaxEmbPerPattern: opts.MaxEmbeddings,
	})
	out := &Result{Patterns: res.Patterns}
	if !res.Completed && runErr == nil {
		if opts.MaxPatterns > 0 && len(res.Patterns) >= opts.MaxPatterns {
			out.Truncated = TruncatedMaxPatterns
		} else {
			out.Truncated = TruncatedBudget
		}
	}
	return out, runErr
}

func mineOrigami(ctx context.Context, host Host, opts Options) (*Result, error) {
	cfg := origami.Config{
		MinSupport:       opts.MinSupport,
		Seed:             opts.Seed,
		Beta:             opts.MaxPatterns,
		MaxEmbPerPattern: opts.MaxEmbeddings,
	}
	var (
		rs     []origami.Result
		runErr error
	)
	if host.DB != nil {
		rs, runErr = origami.MineContext(ctx, host.DB, cfg)
	} else {
		rs, runErr = origami.MineGraphContext(ctx, host.Graph, cfg)
	}
	out := &Result{Patterns: make([]*pattern.Pattern, 0, len(rs))}
	for _, r := range rs {
		out.Patterns = append(out.Patterns, r.P)
	}
	markCapped(out, opts)
	return out, runErr
}

// markCapped records MaxPatterns truncation for engines that apply the
// cap natively (ORIGAMI's Beta, SUBDUE's MaxBest): the result then lands
// at exactly the cap, so the façade's post-hoc `>` truncation never
// fires. Like MoSS's Completed heuristic, a result of exactly cap size
// is reported as truncated.
func markCapped(res *Result, opts Options) {
	if opts.MaxPatterns > 0 && len(res.Patterns) >= opts.MaxPatterns && res.Truncated == TruncatedNone {
		res.Truncated = TruncatedMaxPatterns
	}
}

func mineSeus(ctx context.Context, host Host, opts Options) (*Result, error) {
	rs, err := seus.MineContext(ctx, host.union(), seus.Config{
		MinSupport:  opts.MinSupport,
		VerifyLimit: opts.MaxEmbeddings,
	})
	out := &Result{Patterns: make([]*pattern.Pattern, 0, len(rs))}
	for _, r := range rs {
		out.Patterns = append(out.Patterns, r.P)
	}
	return out, err
}

func mineSubdue(ctx context.Context, host Host, opts Options) (*Result, error) {
	cfg := subdue.Config{
		MinSupport:       opts.MinSupport,
		MaxBest:          opts.MaxPatterns,
		MaxEmbPerPattern: opts.MaxEmbeddings,
	}
	rs, err := subdue.MineContext(ctx, host.union(), cfg)
	out := &Result{Patterns: make([]*pattern.Pattern, 0, len(rs))}
	for _, r := range rs {
		out.Patterns = append(out.Patterns, r.P)
	}
	markCapped(out, opts)
	return out, err
}
