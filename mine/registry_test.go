package mine

import (
	"context"
	"strings"
	"testing"
)

// motifGraph builds a small host network with two vertex-disjoint copies
// of a 6-vertex community motif wired into background chatter — enough
// signal for every registered miner to find something at σ=2.
func motifGraph() *Graph {
	b := NewGraphBuilder(32, 64)
	motif := func() V {
		org := b.AddVertex(0)
		var members []V
		for i := 0; i < 5; i++ {
			m := b.AddVertex(1)
			b.AddEdge(org, m)
			members = append(members, m)
		}
		b.AddEdge(members[0], members[1])
		b.AddEdge(members[2], members[3])
		return org
	}
	c1 := motif()
	c2 := motif()
	var bg []V
	for i := 0; i < 12; i++ {
		bg = append(bg, b.AddVertex(Label(2+i%3)))
	}
	for i := 0; i+1 < len(bg); i += 2 {
		b.AddEdge(bg[i], bg[i+1])
	}
	b.AddEdge(c1, bg[0])
	b.AddEdge(c2, bg[1])
	return b.Build()
}

// checkResult asserts the uniform Result schema: a named, non-empty
// pattern list whose every pattern is a connected graph of >= 1 edge with
// >= 1 embedding of matching arity.
func checkResult(t *testing.T, name string, res *Result) {
	t.Helper()
	if res == nil {
		t.Fatalf("%s: nil result", name)
	}
	if res.Miner != name {
		t.Errorf("%s: Result.Miner = %q", name, res.Miner)
	}
	if len(res.Patterns) == 0 {
		t.Fatalf("%s: empty pattern list", name)
	}
	if res.Stats.Elapsed <= 0 {
		t.Errorf("%s: Stats.Elapsed not recorded", name)
	}
	for i, p := range res.Patterns {
		if p == nil || p.G == nil {
			t.Fatalf("%s: pattern %d is nil / has nil graph", name, i)
		}
		if p.NV() < 2 || p.Size() < 1 {
			t.Errorf("%s: pattern %d trivial (%d vertices, %d edges)", name, i, p.NV(), p.Size())
		}
		if !p.G.IsConnected() {
			t.Errorf("%s: pattern %d disconnected", name, i)
		}
		if len(p.Emb) == 0 {
			t.Errorf("%s: pattern %d has no embeddings", name, i)
		}
		for _, e := range p.Emb {
			if len(e) != p.NV() {
				t.Fatalf("%s: pattern %d embedding arity %d != %d vertices", name, i, len(e), p.NV())
			}
		}
	}
}

// TestEveryMinerRunsOnSingleGraph drives every registered miner through
// the uniform interface on the same small host and checks the Result
// schema — the registry's end-to-end contract.
func TestEveryMinerRunsOnSingleGraph(t *testing.T) {
	g := motifGraph()
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d miners (%v), want the 6 built-ins", len(names), names)
	}
	for _, name := range names {
		m, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, m.Name())
		}
		if m.Describe() == "" {
			t.Errorf("%s: empty description", name)
		}
		res, err := m.Mine(context.Background(), SingleGraph(g), Options{
			MinSupport: 2, K: 5, Dmax: 4, Seed: 1, MaxPatterns: 200,
		})
		if err != nil {
			t.Fatalf("%s: Mine: %v", name, err)
		}
		checkResult(t, name, res)
	}
}

// TestMinersOnTransactionHost drives the transaction setting through the
// façade: the native transaction miners (spidermine, origami) plus one
// union-graph adapter (subdue).
func TestMinersOnTransactionHost(t *testing.T) {
	db, _ := SyntheticTx(SyntheticTxConfig{
		NumGraphs: 6,
		N:         60,
		AvgDeg:    3,
		NumLabels: 12,
		Large:     InjectSpec{NV: 10, Count: 2, Support: 1},
		Seed:      3,
	})
	for _, name := range []string{"spidermine", "origami", "subdue"} {
		m, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Mine(context.Background(), Transactions(db), Options{
			MinSupport: 3, K: 5, Dmax: 6, Seed: 3, MaxPatterns: 100,
		})
		if err != nil {
			t.Fatalf("%s: Mine(tx): %v", name, err)
		}
		checkResult(t, name, res)
	}
}

func TestGetUnknownName(t *testing.T) {
	_, err := Get("no-such-miner")
	if err == nil {
		t.Fatal("Get of unknown name succeeded")
	}
	if !strings.Contains(err.Error(), "no-such-miner") || !strings.Contains(err.Error(), "spidermine") {
		t.Errorf("error %q should name the miss and the registered miners", err)
	}
}

func TestHostValidation(t *testing.T) {
	m, err := Get("spidermine")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mine(context.Background(), Host{}, Options{}); err == nil {
		t.Error("empty host accepted")
	}
	g := motifGraph()
	if _, err := m.Mine(context.Background(), Host{Graph: g, DB: NewDB(g)}, Options{}); err == nil {
		t.Error("ambiguous host accepted")
	}
}

// TestMaxPatternsTruncates: the MaxPatterns budget caps the result and
// records the truncation reason.
func TestMaxPatternsTruncates(t *testing.T) {
	m, _ := Get("moss")
	res, err := m.Mine(context.Background(), SingleGraph(motifGraph()), Options{
		MinSupport: 2, MaxPatterns: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 3 {
		t.Fatalf("MaxPatterns=3 returned %d patterns", len(res.Patterns))
	}
	if res.Truncated != TruncatedMaxPatterns {
		t.Errorf("Truncated = %q, want %q", res.Truncated, TruncatedMaxPatterns)
	}
}
