package mine

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// slowHost is a §5.1 synthetic network big enough that a SpiderMine run
// spans several observable Stage II iterations.
func slowHost() *Graph {
	g, _ := Synthetic(SyntheticConfig{
		N: 2000, AvgDeg: 4, NumLabels: 20,
		Large: InjectSpec{NV: 20, Count: 3, Support: 10},
		Small: InjectSpec{NV: 5, Count: 10, Support: 10},
		Seed:  7,
	})
	return g
}

func fingerprintPatterns(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// cancelMidGrowth mines slowHost cancelling at the first Stage II growth
// boundary via the synchronous progress stream.
func cancelMidGrowth(t *testing.T, g *Graph) (*Result, error, time.Duration) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt time.Time
	m, err := Get("spidermine")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(ctx, SingleGraph(g), Options{
		MinSupport: 3, K: 10, Dmax: 4, Seed: 9, Workers: 2,
		OnProgress: func(ev ProgressEvent) {
			if ev.Stage == "growth" && ev.Iteration == 1 && cancelledAt.IsZero() {
				cancelledAt = time.Now()
				cancel()
			}
		},
	})
	ret := time.Now()
	if cancelledAt.IsZero() {
		t.Fatal("run never reached a growth iteration")
	}
	return res, err, ret.Sub(cancelledAt)
}

// TestFacadeCancelDeterministic: cancelling through the façade surfaces
// context.Canceled, the canceled truncation reason, a prompt return, and
// partial results that are byte-identical across identically cancelled
// runs at fixed workers.
func TestFacadeCancelDeterministic(t *testing.T) {
	g := slowHost()
	res1, err1, lat := cancelMidGrowth(t, g)
	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err1)
	}
	if res1.Truncated != TruncatedCanceled {
		t.Errorf("Truncated = %q, want %q", res1.Truncated, TruncatedCanceled)
	}
	if lat > 100*time.Millisecond {
		t.Errorf("%v from cancel to return, want < 100ms", lat)
	}
	res2, err2, _ := cancelMidGrowth(t, g)
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("second run err = %v", err2)
	}
	if fingerprintPatterns(t, res1) != fingerprintPatterns(t, res2) {
		t.Error("two identically cancelled runs returned different partial results")
	}
}

// TestWallClockBudgetIsNotAnError: exhausting Options.MaxWallClock is a
// truncation, not a failure — nil error, TruncatedDeadline reason.
func TestWallClockBudgetIsNotAnError(t *testing.T) {
	m, _ := Get("spidermine")
	res, err := m.Mine(context.Background(), SingleGraph(slowHost()), Options{
		MinSupport: 3, K: 10, Dmax: 4, Seed: 9,
		MaxWallClock: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("budget exhaustion surfaced as error: %v", err)
	}
	if res.Truncated != TruncatedDeadline {
		t.Errorf("Truncated = %q, want %q", res.Truncated, TruncatedDeadline)
	}
}

// TestCallerCancelDuringWallClockBudget: regression — a *caller* ctx
// cancelled while the MaxWallClock timeout child is live must still be
// classified as the caller's error (ctx.Err() plus committed partials),
// never as budget truncation. The classification keys on the fired
// context's cause, so the live budget timer cannot mask the cancel.
func TestCallerCancelDuringWallClockBudget(t *testing.T) {
	m, _ := Get("spidermine")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := m.Mine(ctx, SingleGraph(slowHost()), Options{
		MinSupport: 3, K: 10, Dmax: 4, Seed: 9,
		MaxWallClock: time.Hour, // far beyond the run: only the cancel can fire
		OnProgress: func(ev ProgressEvent) {
			if ev.Stage == "growth" && ev.Iteration == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (caller cancel misread as budget truncation)", err)
	}
	if res == nil {
		t.Fatal("nil Result: cancelled runs must carry committed partials")
	}
	if res.Truncated != TruncatedCanceled {
		t.Errorf("Truncated = %q, want %q", res.Truncated, TruncatedCanceled)
	}
}

// TestWallClockBudgetWithCancellableCaller: the complementary ordering —
// the budget fires under a caller ctx that *could* fire but never does;
// the run must come back as a truncation with a nil error.
func TestWallClockBudgetWithCancellableCaller(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, _ := Get("spidermine")
	res, err := m.Mine(ctx, SingleGraph(slowHost()), Options{
		MinSupport: 3, K: 10, Dmax: 4, Seed: 9,
		MaxWallClock: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("budget exhaustion surfaced as error: %v", err)
	}
	if res.Truncated != TruncatedDeadline {
		t.Errorf("Truncated = %q, want %q", res.Truncated, TruncatedDeadline)
	}
}

// TestCallerDeadlineIsAnError: the same wall-clock stop via the caller's
// ctx *is* an error — the caller asked for it and must see ctx.Err().
func TestCallerDeadlineIsAnError(t *testing.T) {
	m, _ := Get("spidermine")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := m.Mine(ctx, SingleGraph(slowHost()), Options{
		MinSupport: 3, K: 10, Dmax: 4, Seed: 9,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res.Truncated != TruncatedDeadline {
		t.Errorf("Truncated = %q, want %q", res.Truncated, TruncatedDeadline)
	}
}

// TestProgressStream: a full run emits stage events in coordinator order,
// ending with "done".
func TestProgressStream(t *testing.T) {
	m, _ := Get("spidermine")
	var stages []string
	_, err := m.Mine(context.Background(), SingleGraph(motifGraph()), Options{
		MinSupport: 2, K: 3, Dmax: 4, Seed: 1,
		OnProgress: func(ev ProgressEvent) {
			if ev.Miner != "spidermine" {
				t.Errorf("event miner %q", ev.Miner)
			}
			stages = append(stages, ev.Stage)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 3 {
		t.Fatalf("only %d progress events: %v", len(stages), stages)
	}
	if stages[0] != "spiders" {
		t.Errorf("first event %q, want spiders", stages[0])
	}
	if last := stages[len(stages)-1]; last != "done" {
		t.Errorf("last event %q, want done", last)
	}
	done := 0
	for _, s := range stages {
		if s == "done" {
			done++
		}
	}
	if done != 1 {
		t.Errorf("%d terminal \"done\" events, want exactly 1 (%v)", done, stages)
	}
}

// TestMaxPatternsTruncatesNativeCap: engines that apply MaxPatterns
// natively (subdue's MaxBest) still report the truncation reason.
func TestMaxPatternsTruncatesNativeCap(t *testing.T) {
	m, _ := Get("subdue")
	res, err := m.Mine(context.Background(), SingleGraph(motifGraph()), Options{
		MinSupport: 2, MaxPatterns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 2 {
		t.Fatalf("MaxPatterns=2 returned %d patterns", len(res.Patterns))
	}
	if res.Truncated != TruncatedMaxPatterns {
		t.Errorf("Truncated = %q, want %q", res.Truncated, TruncatedMaxPatterns)
	}
}
