package mine

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps miner names to implementations. The six built-in
// engines register in this package's init; external packages may add
// their own with Register.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Miner)
)

// Register adds a miner under its Name. Registering an empty name or a
// name already taken panics: the registry is program wiring, and a
// collision is a bug worth failing loudly on.
func Register(m Miner) {
	name := m.Name()
	if name == "" {
		panic("mine: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mine: Register called twice for %q", name))
	}
	registry[name] = m
}

// Get looks a miner up by name. Unknown names error with the list of
// registered ones.
func Get(name string) (Miner, error) {
	regMu.RLock()
	m, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mine: unknown miner %q (have %v)", name, Names())
	}
	return m, nil
}

// Names returns the registered miner names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
