package mine

import (
	"encoding/json"
	"testing"
	"time"
)

// TestOptionsCanonicalStable: the canonical form is versioned, identical
// for identical configurations, and independent of the progress callback.
func TestOptionsCanonicalStable(t *testing.T) {
	a := Options{MinSupport: 2, K: 10, Dmax: 6, Epsilon: 0.1, Seed: 7}
	b := Options{MinSupport: 2, K: 10, Dmax: 6, Epsilon: 0.1, Seed: 7,
		OnProgress: func(ProgressEvent) {}}
	ca, cb := a.Canonical(), b.Canonical()
	if ca != cb {
		t.Errorf("OnProgress changed the canonical form:\n%s\n%s", ca, cb)
	}
	const want = `mine.Options/v1 minsupport=2 k=10 dmax=6 epsilon=0.1 radius=0 vmin=0 measure="" seed=7 workers=0 maxpatterns=0 maxwallclock=0 maxembeddings=0 maxspiders=0 maxleavesperstar=0`
	if ca != want {
		t.Errorf("canonical form drifted (bump the version if intentional):\ngot  %s\nwant %s", ca, want)
	}
}

// TestOptionsCanonicalDistinguishesEveryField: flipping any single
// semantic field must change the canonical form — a collision would
// alias two different configurations in a result cache.
func TestOptionsCanonicalDistinguishesEveryField(t *testing.T) {
	base := Options{}
	variants := map[string]Options{
		"MinSupport":       {MinSupport: 3},
		"K":                {K: 5},
		"Dmax":             {Dmax: 4},
		"Epsilon":          {Epsilon: 0.25},
		"Radius":           {Radius: 2},
		"Vmin":             {Vmin: 12},
		"Measure":          {Measure: MeasureDisjoint},
		"Seed":             {Seed: 42},
		"Workers":          {Workers: 4},
		"MaxPatterns":      {MaxPatterns: 9},
		"MaxWallClock":     {MaxWallClock: time.Second},
		"MaxEmbeddings":    {MaxEmbeddings: 100},
		"MaxSpiders":       {MaxSpiders: 1000},
		"MaxLeavesPerStar": {MaxLeavesPerStar: 8},
	}
	seen := map[string]string{base.Canonical(): "zero value"}
	for field, o := range variants {
		c := o.Canonical()
		if prev, dup := seen[c]; dup {
			t.Errorf("canonical form of %s collides with %s: %s", field, prev, c)
		}
		seen[c] = field
	}
}

// TestProgressEventJSON locks the NDJSON wire shape serving surfaces
// stream: lower-snake keys, elapsed in nanoseconds, omitted zero-valued
// optional counters.
func TestProgressEventJSON(t *testing.T) {
	ev := ProgressEvent{
		Miner: "spidermine", Stage: "growth", Iteration: 3,
		Patterns: 17, Merges: 2, Elapsed: 1500 * time.Millisecond,
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"miner":"spidermine","stage":"growth","iteration":3,"patterns":17,"merges":2,"elapsed_ns":1500000000}`
	if string(b) != want {
		t.Errorf("wire shape drifted:\ngot  %s\nwant %s", b, want)
	}
	var back ProgressEvent
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Errorf("round trip: %+v -> %+v", ev, back)
	}
}
