package mine

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// Versioned binary codec for Results — the wire form the serving
// layer's persistent result cache stores mined artifacts in
// (internal/store). A Result round-trips exactly: miner name,
// truncation reason, Stats, and every pattern with its graph (via the
// graph binary codec), identity fields, and full embedding list. The
// per-pattern caches (invariant hash, canonical code) are derived state
// and recompute lazily on the decoded copy.
//
// The format is versioned by the magic: any change to the field set or
// encoding must introduce a new magic so stale cache blobs can never
// decode under a different interpretation.

// resultMagic identifies version 1 of the binary Result encoding.
var resultMagic = [4]byte{'S', 'P', 'R', '1'}

// ErrBadResultCodec reports bytes that are not a valid encoded Result.
var ErrBadResultCodec = errors.New("mine: bad binary result encoding")

// EncodeResult returns the binary encoding of res.
func EncodeResult(res *Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("mine: EncodeResult(nil)")
	}
	statsJSON, err := json.Marshal(res.Stats)
	if err != nil {
		return nil, fmt.Errorf("mine: EncodeResult stats: %w", err)
	}
	dst := append([]byte(nil), resultMagic[:]...)
	appendBytes := func(b []byte) {
		dst = binary.AppendUvarint(dst, uint64(len(b)))
		dst = append(dst, b...)
	}
	appendBytes([]byte(res.Miner))
	appendBytes([]byte(res.Truncated))
	appendBytes(statsJSON)
	dst = binary.AppendUvarint(dst, uint64(len(res.Patterns)))
	var gbuf []byte
	for i, p := range res.Patterns {
		if p == nil || p.G == nil {
			return nil, fmt.Errorf("mine: EncodeResult: nil pattern at index %d", i)
		}
		gbuf = p.G.AppendBinary(gbuf[:0])
		appendBytes(gbuf)
		dst = binary.AppendVarint(dst, int64(p.ID))
		dst = binary.AppendVarint(dst, int64(p.Origin))
		if p.Merged {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		nv := p.NV()
		dst = binary.AppendUvarint(dst, uint64(len(p.Emb)))
		for _, e := range p.Emb {
			if len(e) != nv {
				return nil, fmt.Errorf("mine: EncodeResult: embedding arity %d != %d vertices (pattern %d)", len(e), nv, i)
			}
			for _, hv := range e {
				dst = binary.AppendUvarint(dst, uint64(uint32(hv)))
			}
		}
	}
	return dst, nil
}

// DecodeResult rebuilds a Result from its binary encoding. Pattern
// graphs decode through graph.DecodeBinary (full structural
// validation); embeddings are checked for arity only — host-vertex
// range is the caller's to verify against its host, if it has one.
func DecodeResult(data []byte) (*Result, error) {
	if len(data) < len(resultMagic) || [4]byte(data[:4]) != resultMagic {
		return nil, fmt.Errorf("%w: missing %q magic", ErrBadResultCodec, resultMagic)
	}
	p := data[4:]
	readUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(p)
		if w <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrBadResultCodec)
		}
		p = p[w:]
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, w := binary.Varint(p)
		if w <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrBadResultCodec)
		}
		p = p[w:]
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(p)) {
			return nil, fmt.Errorf("%w: truncated byte field", ErrBadResultCodec)
		}
		b := p[:n]
		p = p[n:]
		return b, nil
	}

	res := &Result{}
	miner, err := readBytes()
	if err != nil {
		return nil, err
	}
	res.Miner = string(miner)
	trunc, err := readBytes()
	if err != nil {
		return nil, err
	}
	res.Truncated = Truncation(trunc)
	statsJSON, err := readBytes()
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(statsJSON, &res.Stats); err != nil {
		return nil, fmt.Errorf("%w: stats: %v", ErrBadResultCodec, err)
	}
	np, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if np > uint64(len(p)) { // each pattern costs ≥ 1 byte
		return nil, fmt.Errorf("%w: implausible pattern count %d", ErrBadResultCodec, np)
	}
	res.Patterns = make([]*Pattern, 0, np)
	for i := uint64(0); i < np; i++ {
		gblob, err := readBytes()
		if err != nil {
			return nil, err
		}
		g, err := graph.DecodeBinary(gblob)
		if err != nil {
			return nil, fmt.Errorf("%w: pattern %d graph: %v", ErrBadResultCodec, i, err)
		}
		id, err := readVarint()
		if err != nil {
			return nil, err
		}
		origin, err := readVarint()
		if err != nil {
			return nil, err
		}
		if len(p) < 1 {
			return nil, fmt.Errorf("%w: truncated pattern %d", ErrBadResultCodec, i)
		}
		merged := p[0] != 0
		p = p[1:]
		ne, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if origin < -1 || origin >= int64(g.N()) {
			return nil, fmt.Errorf("%w: origin %d out of range (pattern %d)", ErrBadResultCodec, origin, i)
		}
		nv := uint64(g.N())
		// Each embedding costs at least nv bytes (one byte per uvarint),
		// so a count past that is corrupt — reject before allocating.
		if nv > 0 && ne > uint64(len(p))/nv+1 || nv == 0 && ne > uint64(len(p))+1 {
			return nil, fmt.Errorf("%w: implausible embedding count %d (pattern %d)", ErrBadResultCodec, ne, i)
		}
		embs := make([]Embedding, 0, ne)
		for j := uint64(0); j < ne; j++ {
			e := make(Embedding, nv)
			for k := range e {
				hv, err := readUvarint()
				if err != nil {
					return nil, err
				}
				if hv > 1<<31-1 {
					return nil, fmt.Errorf("%w: host vertex %d out of range", ErrBadResultCodec, hv)
				}
				e[k] = graph.V(hv)
			}
			embs = append(embs, e)
		}
		pat := pattern.New(g, embs)
		pat.ID = int(id)
		pat.Origin = graph.V(origin)
		pat.Merged = merged
		res.Patterns = append(res.Patterns, pat)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadResultCodec, len(p))
	}
	return res, nil
}
