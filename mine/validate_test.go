package mine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/support"
)

// TestHostValidate covers the request-validation error paths a serving
// surface routes every job through: a host must set exactly one of Graph
// and DB.
func TestHostValidate(t *testing.T) {
	g := motifGraph()
	db := NewDB(g)
	cases := []struct {
		name    string
		host    Host
		wantErr string
	}{
		{"empty", Host{}, "empty host"},
		{"both set", Host{Graph: g, DB: db}, "ambiguous host"},
		{"graph only", SingleGraph(g), ""},
		{"db only", Transactions(db), ""},
	}
	for _, c := range cases {
		err := c.host.validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: validate() = %v, want nil", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: validate() = %v, want error containing %q", c.name, err, c.wantErr)
		}
	}
}

// TestMineRejectsBadHost: every registered miner refuses an invalid host
// before doing any work, with a nil Result.
func TestMineRejectsBadHost(t *testing.T) {
	g := motifGraph()
	for _, name := range Names() {
		m, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, host := range []Host{{}, {Graph: g, DB: NewDB(g)}} {
			res, err := m.Mine(context.Background(), host, Options{MinSupport: 2})
			if err == nil {
				t.Errorf("%s: Mine accepted invalid host %+v", name, host)
			}
			if res != nil {
				t.Errorf("%s: Mine returned non-nil Result for invalid host", name)
			}
		}
	}
}

// TestMeasureInternal covers the Measure mapping: the three named
// measures map to their internal constants, the default defers to the
// miner's customary measure, and unknown strings error.
func TestMeasureInternal(t *testing.T) {
	cases := []struct {
		m    Measure
		def  support.Measure
		want support.Measure
	}{
		{MeasureDefault, support.CountAll, support.CountAll},
		{MeasureDefault, support.HarmfulOverlap, support.HarmfulOverlap},
		{MeasureAll, support.HarmfulOverlap, support.CountAll},
		{MeasureDisjoint, support.CountAll, support.EdgeDisjoint},
		{MeasureHarmful, support.CountAll, support.HarmfulOverlap},
	}
	for _, c := range cases {
		got, err := c.m.internal(c.def)
		if err != nil {
			t.Errorf("Measure(%q).internal: %v", c.m, err)
			continue
		}
		if got != c.want {
			t.Errorf("Measure(%q).internal = %v, want %v", c.m, got, c.want)
		}
	}
	if _, err := Measure("bogus").internal(support.CountAll); err == nil ||
		!strings.Contains(err.Error(), `unknown measure "bogus"`) {
		t.Errorf("unknown measure error = %v", err)
	}
}

// TestMineRejectsUnknownMeasure: the measure-honoring adapters surface
// the unknown-measure error through Mine — the path a serving endpoint's
// request validation relies on.
func TestMineRejectsUnknownMeasure(t *testing.T) {
	for _, name := range []string{"spidermine", "moss"} {
		m, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.Mine(context.Background(), SingleGraph(motifGraph()), Options{
			MinSupport: 2, Measure: "bogus",
		})
		if err == nil || !strings.Contains(err.Error(), "unknown measure") {
			t.Errorf("%s: Mine with bogus measure = %v, want unknown-measure error", name, err)
		}
	}
}
