// Package mine is the public façade of the SpiderMine reproduction: one
// uniform, context-aware API over every miner the repository implements —
// SpiderMine itself plus the five baselines it is evaluated against
// (GREW, MoSS, ORIGAMI, SEuS, SUBDUE) — in both the single-graph and the
// graph-transaction setting.
//
// The shape of the API:
//
//	m, err := mine.Get("spidermine")
//	res, err := m.Mine(ctx, mine.SingleGraph(g), mine.Options{
//		MinSupport: 2, K: 10, Dmax: 6,
//	})
//
// Miners are looked up by name in a string-keyed registry (Get, Names,
// Register); every miner accepts the same typed Options (support
// threshold, top-K, budgets, worker count, progress callback) and returns
// the same Result (patterns + Stats + a truncation reason). Budgets —
// MaxPatterns, MaxWallClock, MaxEmbeddings — bound a run's output size,
// wall-clock, and per-pattern memory; a run stopped by its own budget is
// *not* an error: it returns a truncated Result with Truncated set.
// Cancelling or deadlining the caller's ctx *is* an error: the run
// returns ctx.Err() together with the deterministic partial results the
// engine had committed (see the cancellation contract below).
//
// # Cancellation contract
//
// Cancellation is cooperative and flows through the deterministic
// worker-pool substrate (internal/par): every parallel fan-out and every
// long sequential loop observes ctx at item or iteration granularity, so
// runs return promptly after ctx fires. The invariants:
//
//   - An *uncancelled* run is byte-identical to a run without any context
//     plumbing: all checks are gated off the hot path when ctx cannot
//     fire, and Result contents never depend on timing.
//   - A *cancelled* run returns ctx.Err() plus the patterns of the last
//     committed reduction boundary (SpiderMine commits after every
//     grow+merge iteration; the baselines at their loop boundaries). An
//     iteration aborted mid-flight is rolled back wholesale, so the
//     partial result is a deterministic function of *which* boundary the
//     cancellation was observed at — a callback-pinned cancel (see
//     Options.OnProgress) yields byte-identical partial results across
//     runs at fixed workers.
//
// # Progress
//
// Options.OnProgress streams per-stage events (stage name, iteration,
// working-set size, merges, elapsed wall-clock) synchronously on the
// coordinating goroutine. Because delivery is synchronous and between
// parallel sections, a callback may cancel the run's context to stop it
// at exactly the boundary it just observed.
package mine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/support"
)

// Host names the data a miner runs against: exactly one of Graph (the
// single massive network setting, the paper's main object) or DB (the
// graph-transaction setting of §5.1.2) must be set.
type Host struct {
	Graph *Graph
	DB    *DB
}

// SingleGraph wraps a single host network.
func SingleGraph(g *Graph) Host { return Host{Graph: g} }

// Transactions wraps a graph-transaction database.
func Transactions(db *DB) Host { return Host{DB: db} }

// validate reports whether exactly one host field is set.
func (h Host) validate() error {
	switch {
	case h.Graph == nil && h.DB == nil:
		return fmt.Errorf("mine: empty host (set Graph or DB)")
	case h.Graph != nil && h.DB != nil:
		return fmt.Errorf("mine: ambiguous host (both Graph and DB set)")
	}
	return nil
}

// union returns the graph a single-graph miner should run on: the host
// graph itself, or the transaction database's disjoint union.
func (h Host) union() *Graph {
	if h.Graph != nil {
		return h.Graph
	}
	u, _ := h.DB.Union()
	return u
}

// Measure selects the support definition used in σ-comparisons.
type Measure string

const (
	// MeasureDefault lets each miner use its customary measure
	// (SpiderMine: all embeddings; MoSS: harmful overlap; SUBDUE/GREW
	// count vertex-disjoint instances by construction).
	MeasureDefault Measure = ""
	// MeasureAll counts distinct embedding subgraphs (Definition 2).
	MeasureAll Measure = "all"
	// MeasureDisjoint counts pairwise edge-disjoint embeddings.
	MeasureDisjoint Measure = "disjoint"
	// MeasureHarmful is the Fiedler–Borgelt harmful-overlap measure.
	MeasureHarmful Measure = "harmful"
)

// Valid reports whether the measure is one of the defined values; the
// error names the accepted ones. Serving surfaces use it to reject a
// request before scheduling work.
func (m Measure) Valid() error {
	_, err := m.internal(support.CountAll)
	return err
}

// internal maps a Measure to the internal support constant; def is the
// miner's customary measure for MeasureDefault.
func (m Measure) internal(def support.Measure) (support.Measure, error) {
	switch m {
	case MeasureDefault:
		return def, nil
	case MeasureAll:
		return support.CountAll, nil
	case MeasureDisjoint:
		return support.EdgeDisjoint, nil
	case MeasureHarmful:
		return support.HarmfulOverlap, nil
	}
	return 0, fmt.Errorf("mine: unknown measure %q (have %q, %q, %q)", m, MeasureAll, MeasureDisjoint, MeasureHarmful)
}

// Options is the uniform mining configuration. Zero values mean "the
// miner's sensible default"; knobs a miner has no use for are ignored
// (each adapter documents which).
type Options struct {
	// MinSupport is the support threshold σ (embeddings in the
	// single-graph setting, containing transactions in the DB setting).
	MinSupport int
	// K bounds how many patterns SpiderMine targets (its top-K
	// semantics). Baselines without top-K semantics ignore it; use
	// MaxPatterns to bound any miner's output size.
	K int
	// Dmax bounds result-pattern diameter (SpiderMine).
	Dmax int
	// Epsilon is SpiderMine's error bound ε.
	Epsilon float64
	// Radius is the spider radius r (SpiderMine).
	Radius int
	// Vmin is SpiderMine's large-pattern vertex bound (default |V|/10).
	Vmin int
	// Measure selects the support definition where the miner honors one.
	Measure Measure
	// Seed drives all randomness; runs are deterministic per seed.
	Seed int64
	// Workers sets mining parallelism (0/1 sequential, > 1 that many
	// goroutines, < 0 GOMAXPROCS). Results are identical across settings
	// (the deterministic-parallelism contract of internal/par).
	Workers int

	// MaxPatterns caps how many patterns the Result carries (0 =
	// unlimited). Miners with native budgets (MoSS) stop enumerating at
	// the cap; otherwise the result list is truncated after mining.
	// Hitting the cap sets Truncated = TruncatedMaxPatterns.
	MaxPatterns int
	// MaxWallClock bounds the run's wall-clock (0 = unlimited). Unlike a
	// deadline on ctx, exhausting this budget is a normal outcome: the
	// Result is returned with Truncated = TruncatedDeadline and a nil
	// error.
	MaxWallClock time.Duration
	// MaxEmbeddings caps the embedding list carried per pattern (0 =
	// the miner's default). Trimmed support is a lower bound: patterns
	// can be lost, never falsely admitted.
	MaxEmbeddings int

	// MaxSpiders and MaxLeavesPerStar are SpiderMine Stage I enumeration
	// budgets (0 = unlimited); bound them on scale-free hosts.
	MaxSpiders       int
	MaxLeavesPerStar int

	// OnProgress, when non-nil, receives streaming stage events
	// synchronously on the coordinating goroutine (see the package
	// comment). Events never influence mining results.
	OnProgress func(ProgressEvent)
}

// ProgressEvent is one streaming stage report from a run. The JSON form
// (used verbatim as the NDJSON wire format of serving surfaces) keys
// fields in lower snake case and carries Elapsed in nanoseconds, the
// time.Duration integer encoding; zero-valued optional counters are
// omitted.
type ProgressEvent struct {
	Miner     string        `json:"miner"`               // registry name of the reporting miner
	Stage     string        `json:"stage"`               // miner-specific stage name ("spiders", "growth", ...)
	Restart   int           `json:"restart,omitempty"`   // randomized restart index, where applicable
	Iteration int           `json:"iteration,omitempty"` // 1-based iteration within the stage
	Spiders   int           `json:"spiders,omitempty"`   // |S_all| after Stage I (SpiderMine)
	Patterns  int           `json:"patterns"`            // current working-set / result size
	Merges    int           `json:"merges,omitempty"`    // cumulative merges (SpiderMine)
	Elapsed   time.Duration `json:"elapsed_ns"`          // wall-clock since the run started
}

// Truncation says why a Result carries fewer patterns than an unbounded
// run would have produced.
type Truncation string

const (
	// TruncatedNone: the run completed within every budget.
	TruncatedNone Truncation = ""
	// TruncatedMaxPatterns: the MaxPatterns budget capped the result.
	TruncatedMaxPatterns Truncation = "max-patterns"
	// TruncatedDeadline: a wall-clock bound stopped the run (the
	// MaxWallClock budget, or — together with a non-nil error — a
	// deadline on the caller's ctx).
	TruncatedDeadline Truncation = "deadline"
	// TruncatedCanceled: the caller's ctx was cancelled; the Result
	// holds the deterministic committed partial state.
	TruncatedCanceled Truncation = "canceled"
	// TruncatedBudget: a miner-internal enumeration budget (e.g. MoSS's
	// pattern-space exhaustion guard) stopped the run early.
	TruncatedBudget Truncation = "budget"
)

// StageTime records one stage's wall-clock share. Durations marshal as
// nanoseconds (the time.Duration integer encoding), matching
// ProgressEvent's wire form.
type StageTime struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Stats is the uniform per-run statistics block. Fields a miner does not
// track stay zero.
type Stats struct {
	Spiders        int           `json:"spiders,omitempty"`         // |S_all| mined in Stage I (SpiderMine)
	SeedDraws      int           `json:"seed_draws,omitempty"`      // Lemma 2's M (SpiderMine)
	GrowIterations int           `json:"grow_iterations,omitempty"` // growth iterations executed
	Merges         int           `json:"merges,omitempty"`          // successful merges
	IsoSkipped     int64         `json:"iso_skipped,omitempty"`     // isomorphism tests pruned away
	IsoRun         int64         `json:"iso_run,omitempty"`         // exact isomorphism tests executed
	CanonRun       int64         `json:"canon_run,omitempty"`       // canonical-code computations (SpiderMine identity checks)
	CanonNodes     int64         `json:"canon_nodes,omitempty"`     // canonicalization search nodes; CanonNodes/CanonRun quantifies orbit/trace pruning
	Stages         []StageTime   `json:"stages,omitempty"`          // per-stage wall-clock, in stage order
	Elapsed        time.Duration `json:"elapsed_ns"`                // total wall-clock of the run
}

// Result is the uniform mining output: patterns (largest-first, as each
// miner defines its order), run statistics, and why — if at all — the
// result was truncated.
type Result struct {
	Miner     string
	Patterns  []*Pattern
	Stats     Stats
	Truncated Truncation
}

// Miner is the uniform mining interface every registered engine
// implements. Mine observes ctx under the package's cancellation
// contract and never mutates the host.
type Miner interface {
	// Name is the registry key.
	Name() string
	// Describe is a one-line human description.
	Describe() string
	// Mine runs the engine against the host under opts.
	Mine(ctx context.Context, host Host, opts Options) (*Result, error)
}
