package mine

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

type methodTransient struct{ retryable bool }

func (e *methodTransient) Error() string   { return "method-classified" }
func (e *methodTransient) Transient() bool { return e.retryable }

func TestIsTransient(t *testing.T) {
	organic := errors.New("disk on fire")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error is permanent", organic, false},
		{"Transient wrapper", Transient(organic), true},
		{"wrapped Transient wrapper", fmt.Errorf("attempt 2: %w", Transient(organic)), true},
		{"ErrTransient sentinel", fmt.Errorf("flaky: %w", ErrTransient), true},
		{"Transient() true method", &methodTransient{retryable: true}, true},
		{"Transient() false method", &methodTransient{retryable: false}, false},
		{"context.Canceled", context.Canceled, false},
		{"wrapped context.Canceled", fmt.Errorf("run: %w", context.Canceled), false},
		{"context.DeadlineExceeded", context.DeadlineExceeded, false},
		{"transient-marked cancellation stays non-transient", Transient(context.Canceled), false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestTransientPreservesChain(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	organic := errors.New("disk on fire")
	wrapped := Transient(organic)
	if !errors.Is(wrapped, organic) {
		t.Error("Transient broke errors.Is to the original error")
	}
	if wrapped.Error() != organic.Error() {
		t.Errorf("Transient changed the message: %q vs %q", wrapped.Error(), organic.Error())
	}
}
