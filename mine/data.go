package mine

import (
	"io"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/txdb"
)

// This file re-exports the host-data vocabulary the façade's inputs and
// outputs are expressed in — graphs, builders, patterns, transaction
// databases, the LG/DOT codecs, and the synthetic workload generators of
// the paper's evaluation — so programs (the examples, external tooling)
// can build inputs and consume results without reaching into internal/.
// The aliases expose the internal types themselves: a *mine.Graph *is* an
// *internal/graph.Graph, with its full method set (WriteLG, WriteDOT,
// Diameter, ...), at zero wrapping cost.

type (
	// Graph is an immutable labeled undirected graph in CSR layout.
	Graph = graph.Graph
	// GraphBuilder accumulates vertices and edges for a Graph.
	GraphBuilder = graph.Builder
	// Label is a vertex (or encoded edge) label.
	Label = graph.Label
	// V is a vertex id.
	V = graph.V
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Pattern is a mined pattern: a pattern graph plus its embeddings.
	Pattern = pattern.Pattern
	// Embedding maps pattern vertices to host vertices.
	Embedding = pattern.Embedding
	// DB is a graph-transaction database.
	DB = txdb.DB
	// Mapped is an open handle to an mmap'd SPC1 graph image (see
	// OpenMapped); its Graph is invalid after Close.
	Mapped = graph.Mapped
	// Advice is an access-pattern hint for Mapped.Advise.
	Advice = graph.Advice

	// SyntheticConfig parameterizes the paper's §5.1 single-graph
	// generator (ER background + injected patterns).
	SyntheticConfig = gen.SyntheticConfig
	// SyntheticTxConfig parameterizes the transaction-database generator.
	SyntheticTxConfig = txdb.SyntheticTxConfig
	// InjectSpec sizes one injected pattern population.
	InjectSpec = gen.InjectSpec
	// DBLPConfig parameterizes the DBLP-like co-authorship generator.
	DBLPConfig = gen.DBLPConfig
	// CallGraphConfig parameterizes the Jeti-like call-graph generator.
	CallGraphConfig = gen.CallGraphConfig
)

// NewGraphBuilder returns a builder pre-sized for n vertices and m edges
// (both may be exceeded).
func NewGraphBuilder(n, m int) *GraphBuilder { return graph.NewBuilder(n, m) }

// FromEdges builds a graph from explicit labels and edges.
func FromEdges(labels []Label, edges []Edge) *Graph { return graph.FromEdges(labels, edges) }

// ReadLG parses a graph in LG format (# name / v id label / e u w).
func ReadLG(r io.Reader) (*Graph, string, error) { return graph.ReadLG(r) }

// OpenMapped mmaps an SPC1 graph image written by Graph.WriteImage /
// WriteImageFile: the returned handle's Graph reads straight from the
// page cache with zero decoding and O(1) open-time allocations, after a
// streaming verification pass. A mapped host mines identically to its
// in-RAM twin (README §Out-of-core). Close the handle when done; Clone
// the graph first if it must outlive the mapping.
func OpenMapped(path string) (*Mapped, error) { return graph.OpenMapped(path) }

// OpenMappedTrusted is OpenMapped without the verification pass — O(1)
// total. Only for images this process (or a fingerprint check) already
// verified; a hostile image can crash the process.
func OpenMappedTrusted(path string) (*Mapped, error) { return graph.OpenMappedTrusted(path) }

// OpenImage opens an SPC1 image already sitting in memory, aliasing the
// graph onto data (which must stay live and unmodified while the graph
// is in use).
func OpenImage(data []byte) (*Graph, error) { return graph.OpenImage(data) }

// NewDB builds a transaction database over the given graphs.
func NewDB(gs ...*Graph) *DB { return txdb.New(gs...) }

// EncodeEdgeLabels encodes an edge-labeled graph for the vertex-labeled
// miners by subdividing each edge with a midpoint vertex carrying the
// edge label (offset by `offset` past the vertex-label space); §3's
// edge-label remark.
func EncodeEdgeLabels(labels []Label, edges []Edge, edgeLabels []Label, offset Label) (*Graph, error) {
	return graph.EncodeEdgeLabels(labels, edges, edgeLabels, offset)
}

// DecodedEdge is one edge of a decoded edge-labeled pattern.
type DecodedEdge = graph.DecodedEdge

// DecodeEdgeLabels inverts EncodeEdgeLabels on a mined pattern graph.
func DecodeEdgeLabels(p *Graph, offset Label) (vertexLabels []Label, edges []DecodedEdge, danglingMidpoints int, err error) {
	return graph.DecodeEdgeLabels(p, offset)
}

// Synthetic generates a §5.1 synthetic network; it returns the host graph
// and the injected patterns.
func Synthetic(cfg SyntheticConfig) (*Graph, []*Graph) { return gen.Synthetic(cfg) }

// SyntheticTx generates a transaction database with injected large and
// small patterns; it returns the database and the large patterns.
func SyntheticTx(cfg SyntheticTxConfig) (*DB, []*Graph) { return txdb.SyntheticTx(cfg) }

// DBLPLike generates a DBLP-like co-authorship network with planted
// collaborative motifs.
func DBLPLike(cfg DBLPConfig) (*Graph, []*Graph) { return gen.DBLPLike(cfg) }

// CallGraphLike generates a Jeti-like software call graph with planted
// library-usage motifs.
func CallGraphLike(cfg CallGraphConfig) (*Graph, []*Graph) { return gen.CallGraphLike(cfg) }
