package mine

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// codecHost is a small two-community host with repeated structure, so a
// real mining run yields patterns with embeddings to round-trip.
func codecHost() *Graph {
	b := NewGraphBuilder(24, 40)
	for c := 0; c < 4; c++ {
		base := b.AddVertex(1)
		l1 := b.AddVertex(2)
		l2 := b.AddVertex(2)
		l3 := b.AddVertex(3)
		b.AddEdge(base, l1)
		b.AddEdge(base, l2)
		b.AddEdge(base, l3)
		b.AddEdge(l1, l3)
	}
	return b.Build()
}

func mustMine(t *testing.T) *Result {
	t.Helper()
	m, err := Get("spidermine")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(context.Background(), SingleGraph(codecHost()), Options{
		MinSupport: 2, K: 4, Dmax: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("mining produced no patterns; the round-trip test needs some")
	}
	return res
}

// patternsJSON renders patterns through their canonical JSON wire form —
// graph, embeddings, identity fields — the equality basis for the
// round-trip assertion.
func patternsJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestResultCodecRoundTrip(t *testing.T) {
	res := mustMine(t)
	res.Stats.Elapsed = 123 * time.Millisecond // fixed for byte comparison

	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if dec.Miner != res.Miner || dec.Truncated != res.Truncated {
		t.Fatalf("identity fields: got (%q, %q), want (%q, %q)", dec.Miner, dec.Truncated, res.Miner, res.Truncated)
	}
	wantStats, _ := json.Marshal(res.Stats)
	gotStats, _ := json.Marshal(dec.Stats)
	if string(gotStats) != string(wantStats) {
		t.Fatalf("stats round-trip:\n got %s\nwant %s", gotStats, wantStats)
	}
	if got, want := patternsJSON(t, dec), patternsJSON(t, res); got != want {
		t.Fatalf("patterns round-trip differs:\n got %s\nwant %s", got, want)
	}
	// Derived caches recompute identically on the decoded copy.
	for i := range res.Patterns {
		if dec.Patterns[i].Invariant() != res.Patterns[i].Invariant() {
			t.Fatalf("pattern %d invariant differs after round-trip", i)
		}
	}
	// A second encode of the decoded result is byte-identical.
	re, err := EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(enc) {
		t.Fatalf("re-encode differs (%d vs %d bytes)", len(re), len(enc))
	}
}

func TestResultCodecEmptyResult(t *testing.T) {
	res := &Result{Miner: "testminer", Truncated: TruncatedMaxPatterns}
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Miner != "testminer" || dec.Truncated != TruncatedMaxPatterns || len(dec.Patterns) != 0 {
		t.Fatalf("decoded %+v", dec)
	}
}

func TestResultCodecRejectsCorruption(t *testing.T) {
	res := mustMine(t)
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("NOPE"), enc[4:]...),
		"truncated head": enc[:6],
		"truncated tail": enc[:len(enc)-3],
		"trailing bytes": append(append([]byte(nil), enc...), 0xff),
	}
	for name, data := range cases {
		if _, err := DecodeResult(data); !errors.Is(err, ErrBadResultCodec) {
			t.Errorf("%s: want ErrBadResultCodec, got %v", name, err)
		}
	}
	if _, err := EncodeResult(nil); err == nil {
		t.Error("EncodeResult(nil) must fail")
	}
}
