package mine

import (
	"context"
	"testing"
)

// TestStatsStagesAlwaysPopulated: the adapter guarantees every result
// carries at least one stage timing. Engines with internal structure
// (spidermine) report their own stages; everything else gets the
// whole-run "mine" stage, so per-stage consumers (the serving layer's
// stage histograms) cover every miner.
func TestStatsStagesAlwaysPopulated(t *testing.T) {
	g := FromEdges([]Label{1, 2, 1, 2}, []Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}})

	for _, name := range []string{"moss", "subdue"} {
		m, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Mine(context.Background(), SingleGraph(g), Options{MinSupport: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Stats.Stages) != 1 || res.Stats.Stages[0].Name != "mine" {
			t.Fatalf("%s: stages = %+v, want the single default \"mine\" stage", name, res.Stats.Stages)
		}
		if res.Stats.Stages[0].Duration <= 0 {
			t.Fatalf("%s: default stage has no duration: %+v", name, res.Stats.Stages[0])
		}
	}

	m, err := Get("spidermine")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(context.Background(), SingleGraph(g), Options{MinSupport: 1, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"spiders", "growth", "recovery"}
	if len(res.Stats.Stages) != len(want) {
		t.Fatalf("spidermine stages = %+v, want %v", res.Stats.Stages, want)
	}
	for i, st := range res.Stats.Stages {
		if st.Name != want[i] {
			t.Fatalf("spidermine stage %d = %q, want %q", i, st.Name, want[i])
		}
	}
}
