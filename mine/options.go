package mine

import (
	"strconv"
	"strings"
)

// Canonical returns a stable, versioned serialization of the Options —
// the fingerprint basis for result caches and job deduplication. Two
// Options values with identical mining semantics produce identical
// canonical forms regardless of how they were constructed.
//
// Every field that can influence a Result is included — budgets and
// Workers too: the deterministic-parallelism contract makes *patterns*
// worker-independent, but Stats and budget-truncated results are not, so
// the canonical form keys on the full configuration. OnProgress is
// excluded: progress delivery never influences mining results (and a
// callback has no stable serialization).
//
// The format is versioned ("mine.Options/v1 ..."); any change to the
// field set, field order, or encoding must bump the version so stale
// cache entries can never alias a differently-interpreted configuration.
func (o Options) Canonical() string {
	var b strings.Builder
	b.Grow(256)
	b.WriteString("mine.Options/v1")
	appendInt := func(key string, v int) {
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(v))
	}
	appendInt("minsupport", o.MinSupport)
	appendInt("k", o.K)
	appendInt("dmax", o.Dmax)
	b.WriteString(" epsilon=")
	b.WriteString(strconv.FormatFloat(o.Epsilon, 'g', -1, 64))
	appendInt("radius", o.Radius)
	appendInt("vmin", o.Vmin)
	b.WriteString(" measure=")
	b.WriteString(strconv.Quote(string(o.Measure)))
	b.WriteString(" seed=")
	b.WriteString(strconv.FormatInt(o.Seed, 10))
	appendInt("workers", o.Workers)
	appendInt("maxpatterns", o.MaxPatterns)
	b.WriteString(" maxwallclock=")
	b.WriteString(strconv.FormatInt(int64(o.MaxWallClock), 10))
	appendInt("maxembeddings", o.MaxEmbeddings)
	appendInt("maxspiders", o.MaxSpiders)
	appendInt("maxleavesperstar", o.MaxLeavesPerStar)
	return b.String()
}
