package repro_test

// Out-of-core equivalence gates (README §Out-of-core): a host opened by
// mmap from an SPC1 image must mine byte-identically to the same host
// built in RAM — same patterns, same order, same embeddings — at every
// worker count. The image open path aliases the CSR arrays onto the
// mapped file instead of rebuilding them, so these tests are the proof
// that aliasing is invisible to every read path the miner exercises.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spidermine"
)

// mapHost writes g's SPC1 image to a temp file and opens it mapped; the
// cleanup unmaps.
func mapHost(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "host.spc1")
	if err := graph.WriteImageFile(g, path); err != nil {
		t.Fatal(err)
	}
	m, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m.Graph()
}

func resultFingerprint(t *testing.T, res *spidermine.Result) string {
	t.Helper()
	b, err := json.Marshal(res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMappedEqualsBuilt is the differential harness: three generator
// regimes (Table 1 synthetic, scale-free BA, ER background) × seeds ×
// worker counts, each mined from the built graph and from its mapped
// twin, asserting byte-identical serialized results.
func TestMappedEqualsBuilt(t *testing.T) {
	type tc struct {
		name string
		g    *graph.Graph
		cfg  spidermine.Config
	}
	cases := []tc{
		{
			name: "gid1",
			cfg:  spidermine.Config{MinSupport: 2, K: 5, Dmax: 4},
		},
		{
			name: "ba",
			cfg:  spidermine.Config{MinSupport: 2, K: 3, Dmax: 2, MaxLeavesPerStar: 6, MaxSpiders: 20000},
		},
		{
			name: "er",
			cfg:  spidermine.Config{MinSupport: 2, K: 3, Dmax: 3},
		},
	}
	seeds := []int64{1, 2}
	workerCounts := []int{1, 4}
	if testing.Short() {
		cases = cases[:2]
		seeds = seeds[:1]
	}
	for i := range cases {
		switch cases[i].name {
		case "gid1":
			cases[i].g, _ = gen.Synthetic(gen.GIDConfig(1, 1))
		case "ba":
			cases[i].g = gen.BarabasiAlbert(3000, 4, 30, rand.New(rand.NewSource(11)))
		case "er":
			cases[i].g = gen.ErdosRenyi(2000, 3, 20, rand.New(rand.NewSource(12)))
		}
	}
	for _, c := range cases {
		mapped := mapHost(t, c.g)
		for _, seed := range seeds {
			cfg := c.cfg
			cfg.Seed = seed
			for _, w := range workerCounts {
				t.Run(fmt.Sprintf("%s/seed=%d/workers=%d", c.name, seed, w), func(t *testing.T) {
					cfgW := cfg
					cfgW.Workers = w
					want := resultFingerprint(t, spidermine.Mine(c.g, cfgW))
					got := resultFingerprint(t, spidermine.Mine(mapped, cfgW))
					if got != want {
						t.Errorf("mapped result differs from built\nbuilt:  %.200s...\nmapped: %.200s...", want, got)
					}
				})
			}
		}
	}
}

// TestOutOfCoreMillionEdge is the acceptance gate: a generated host
// past 10^6 edges mines end-to-end through OpenMapped with results
// byte-identical to the in-RAM twin. Caps are all deterministic
// (structural counts, never wall-clock) so both runs take the same
// decisions.
func TestOutOfCoreMillionEdge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the million-edge host takes a few seconds")
	}
	g := gen.BarabasiAlbert(126000, 8, 50, rand.New(rand.NewSource(1)))
	if g.M() < 1_000_000 {
		t.Fatalf("generator produced %d edges, need >= 1e6", g.M())
	}
	mapped := mapHost(t, g)
	if mapped.N() != g.N() || mapped.M() != g.M() {
		t.Fatalf("mapped shape (%d,%d) differs from built (%d,%d)", mapped.N(), mapped.M(), g.N(), g.M())
	}
	cfg := spidermine.Config{
		MinSupport: 2, K: 3, Dmax: 2, Seed: 1,
		MaxLeavesPerStar: 2, MaxSpiders: 20000, PerHostCap: 4,
	}
	want := resultFingerprint(t, spidermine.Mine(g, cfg))
	got := resultFingerprint(t, spidermine.Mine(mapped, cfg))
	if got != want {
		t.Error("million-edge mapped mine differs from built")
	}
	if want == "null" {
		t.Error("million-edge mine returned no patterns; the gate proved nothing")
	}
}
